package mesh

import (
	"errors"
	"fmt"
	"testing"
)

func readFrontU64(t *testing.T, a *Allocator, key string) uint64 {
	t.Helper()
	v, err := a.ReadControl(key)
	if err != nil {
		t.Fatalf("ReadControl(%q): %v", key, err)
	}
	return v.(uint64)
}

// TestFrontendDisabledParity pins the escape hatch: with the front end
// off, a scalar workload takes exactly the pre-front-end pool path, and
// because either way the traffic is served by the same single heap, the
// address sequences of the two configurations are identical.
func TestFrontendDisabledParity(t *testing.T) {
	run := func(a *Allocator) []Ptr {
		var seq []Ptr
		for i := 0; i < 300; i++ {
			size := []int{16, 64, 256, 1024}[i%4]
			p, err := a.Malloc(size)
			if err != nil {
				t.Fatal(err)
			}
			seq = append(seq, p)
			if i%2 == 1 {
				if err := a.Free(seq[i-1]); err != nil {
					t.Fatal(err)
				}
			}
		}
		return seq
	}
	on := New(WithSeed(7), WithClock(NewLogicalClock()), WithMeshing(false))
	off := New(WithSeed(7), WithClock(NewLogicalClock()), WithMeshing(false), WithFrontend(false))
	seqOn, seqOff := run(on), run(off)
	for i := range seqOn {
		if seqOn[i] != seqOff[i] {
			t.Fatalf("address %d diverged: frontend=%#x pool-only=%#x", i, seqOn[i], seqOff[i])
		}
	}
	// The pool-only allocator paid one borrow per call (300 mallocs +
	// 150 frees); the front end paid one, for the cold start — the
	// >=10x per-op reduction the stripe layer exists for.
	if b := readFrontU64(t, off, "stats.pool.borrows"); b != 450 {
		t.Fatalf("pool-only borrows = %d, want 450", b)
	}
	if b := readFrontU64(t, on, "stats.pool.borrows"); b != 1 {
		t.Fatalf("frontend borrows = %d, want 1", b)
	}
}

// TestFrontendRuntimeToggle flips frontend.enabled mid-traffic and checks
// both directions take effect: disabling flushes the stripes and routes
// every call through the pool again; re-enabling repopulates.
func TestFrontendRuntimeToggle(t *testing.T) {
	a := New(WithSeed(11), WithClock(NewLogicalClock()))
	for i := 0; i < 10; i++ {
		p, err := a.Malloc(64)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Control("frontend.enabled", false); err != nil {
		t.Fatal(err)
	}
	if idle, _ := a.ReadControl("pool.idle"); idle.(int) != 1 {
		t.Fatalf("disable did not hand the cached heap back: pool.idle = %d", idle)
	}
	b0 := readFrontU64(t, a, "stats.pool.borrows")
	h0 := readFrontU64(t, a, "stats.frontend.hits")
	for i := 0; i < 10; i++ {
		p, err := a.Malloc(64)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if d := readFrontU64(t, a, "stats.pool.borrows") - b0; d != 20 {
		t.Fatalf("disabled front end: pool borrows grew %d over 20 calls, want 20", d)
	}
	if d := readFrontU64(t, a, "stats.frontend.hits") - h0; d != 0 {
		t.Fatalf("disabled front end recorded %d stripe hits", d)
	}
	if err := a.Control("frontend.enabled", true); err != nil {
		t.Fatal(err)
	}
	b1 := readFrontU64(t, a, "stats.pool.borrows")
	for i := 0; i < 10; i++ {
		p, err := a.Malloc(64)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if d := readFrontU64(t, a, "stats.pool.borrows") - b1; d != 1 {
		t.Fatalf("re-enabled front end: pool borrows grew %d, want 1 (cold restart)", d)
	}
}

// TestMagazineAccountingIdentity checks the accounting contract with
// magazines on: mid-traffic the heap-level identity holds with the skew
// reported by stats.frontend.cached_objects; Flush closes the books.
func TestMagazineAccountingIdentity(t *testing.T) {
	a := New(WithSeed(13), WithClock(NewLogicalClock()), WithMagazineObjects(32))
	var live []Ptr
	for i := 0; i < 500; i++ {
		p, err := a.Malloc(64)
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, p)
	}
	for _, p := range live {
		if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	// App-level quiescent, heap-level not: the magazines hold objects the
	// heap still counts as allocated.
	cached, err := a.ReadControl("stats.frontend.cached_objects")
	if err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if cached.(int64) <= 0 {
		t.Fatalf("stats.frontend.cached_objects = %d after churn, want > 0", cached)
	}
	if st.Allocs-st.Frees != uint64(cached.(int64)) {
		t.Fatalf("skew mismatch: allocs-frees = %d, cached_objects = %d",
			st.Allocs-st.Frees, cached)
	}
	if fills := readFrontU64(t, a, "stats.frontend.fills"); fills == 0 {
		t.Fatal("magazine traffic recorded no fills")
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	st = a.Stats()
	if st.Allocs != st.Frees || st.Live != 0 {
		t.Fatalf("identity open after Flush: allocs=%d frees=%d live=%d",
			st.Allocs, st.Frees, st.Live)
	}
	if cached, _ := a.ReadControl("stats.frontend.cached_objects"); cached.(int64) != 0 {
		t.Fatalf("stats.frontend.cached_objects = %d after Flush, want 0", cached)
	}
	if flushes := readFrontU64(t, a, "stats.frontend.flushes"); flushes == 0 {
		t.Fatal("Flush drained no magazines")
	}
	requireCleanInvariants(t, a)
}

// TestMagazineTraceEvents checks the flight recorder captures the
// magazine lifecycle: fill and flush events from the frontend source.
func TestMagazineTraceEvents(t *testing.T) {
	a := New(WithSeed(17), WithClock(NewLogicalClock()), WithMagazineObjects(8),
		WithTracing(true), WithTraceSampleRate(1))
	var ptrs []Ptr
	for i := 0; i < 64; i++ {
		p, err := a.Malloc(64)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	for _, p := range ptrs {
		if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	byKind := map[string]uint64{}
	for k, n := range a.TraceSnapshot().CountByKind() {
		byKind[fmt.Sprint(k)] = n
	}
	if byKind["magazine_fill"] == 0 {
		t.Errorf("no magazine_fill events recorded: %v", byKind)
	}
	if byKind["magazine_flush"] == 0 {
		t.Errorf("no magazine_flush events recorded: %v", byKind)
	}
}

// TestMagazineHardenedFlushDetectsCanarySmash pins the hardening
// integration: the canary check runs at the flush boundary, so an
// overflow into a magazine-cached object's guard word is detected when
// the cache drains — as a typed error with the counter algebra intact.
func TestMagazineHardenedFlushDetectsCanarySmash(t *testing.T) {
	a := New(WithSeed(19), WithClock(NewLogicalClock()), WithMeshing(false),
		WithHardening(true), WithMagazineObjects(8))
	p, err := a.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	usable, err := a.UsableSize(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p); err != nil {
		t.Fatal(err) // parked in the magazine; canary not yet checked
	}
	// Overflow into the guard word while the object sits in the cache.
	if err := a.Write(p+Ptr(usable), []byte{0xAA}); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(); !errors.Is(err, ErrHeapCorruption) {
		t.Fatalf("flush over a smashed canary = %v, want ErrHeapCorruption", err)
	}
	st := a.Stats().Harden
	if st.Violations == 0 {
		t.Fatal("smashed canary recorded no violation")
	}
	if st.Checks != st.Violations+st.Passes {
		t.Fatalf("checks %d != violations %d + passes %d", st.Checks, st.Violations, st.Passes)
	}
	// Containment, not crash: fresh traffic still works.
	q, err := a.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Free(q); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	requireCleanInvariants(t, a)
}

// TestMagazineHardenedRoundTripStaysClean drives hardened traffic through
// the magazines and checks clean traffic stays clean: the fill boundary's
// poison verification and the flush boundary's canary checks all pass.
func TestMagazineHardenedRoundTripStaysClean(t *testing.T) {
	a := New(WithSeed(23), WithClock(NewLogicalClock()), WithHardening(true),
		WithMagazineObjects(16))
	for round := 0; round < 3; round++ {
		var ptrs []Ptr
		for i := 0; i < 100; i++ {
			p, err := a.Malloc(64)
			if err != nil {
				t.Fatal(err)
			}
			if err := a.Write(p, []byte("payload")); err != nil {
				t.Fatal(err)
			}
			ptrs = append(ptrs, p)
		}
		for _, p := range ptrs {
			if err := a.Free(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	st := a.Stats().Harden
	if st.Checks == 0 {
		t.Fatal("hardened magazine traffic recorded no verifications")
	}
	if st.Violations != 0 {
		t.Fatalf("clean traffic recorded %d violations", st.Violations)
	}
	if st.Checks != st.Violations+st.Passes {
		t.Fatalf("checks %d != violations %d + passes %d", st.Checks, st.Violations, st.Passes)
	}
	s := a.Stats()
	if s.Allocs != s.Frees || s.Live != 0 {
		t.Fatalf("identity open: allocs=%d frees=%d live=%d", s.Allocs, s.Frees, s.Live)
	}
	requireCleanInvariants(t, a)
}

// TestMagazineMeshingKeepsAddressesValid checks the paper's core property
// composed with the cache: meshing relocates physical bytes while virtual
// addresses stay stable, so magazine-held (and soon-to-be-reused)
// addresses survive passes unscathed.
func TestMagazineMeshingKeepsAddressesValid(t *testing.T) {
	a := New(WithSeed(29), WithClock(NewLogicalClock()), WithMagazineObjects(16))
	// Fragment the heap through the magazine path: allocate everything
	// first (interleaving frees would let the magazines recycle a tiny
	// working set and never build fragmentation — by design), then free
	// 15 of 16, keeping survivors with known contents.
	var all, live []Ptr
	for i := 0; i < 16*256; i++ {
		p, err := a.Malloc(16)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, p)
	}
	for i, p := range all {
		if i%16 == 0 {
			if err := a.Write(p, []byte{byte(i), byte(i >> 8)}); err != nil {
				t.Fatal(err)
			}
			live = append(live, p)
		} else if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	if released := a.Mesh(); released == 0 {
		t.Fatal("meshing released nothing on a fragmented heap")
	}
	buf := make([]byte, 2)
	for i, p := range live {
		if err := a.Read(p, buf); err != nil {
			t.Fatalf("live object %d unreadable after mesh: %v", i, err)
		}
		want := i * 16
		if buf[0] != byte(want) || buf[1] != byte(want>>8) {
			t.Fatalf("live object %d corrupted across mesh: %v", i, buf)
		}
	}
	for _, p := range live {
		if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	requireCleanInvariants(t, a)
}
