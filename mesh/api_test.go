package mesh

import (
	"testing"
	"time"
)

func TestPublicMallocSurface(t *testing.T) {
	a := det()
	// Calloc is zeroed.
	p, err := a.Calloc(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	if err := a.Read(p, buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("calloc not zeroed")
		}
	}
	// Realloc grows preserving contents.
	if err := a.Write(p, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	q, err := a.Realloc(p, 5000)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 3)
	if err := a.Read(q, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "abc" {
		t.Fatalf("realloc lost contents: %q", got)
	}
	// AlignedAlloc respects alignment.
	r, err := a.AlignedAlloc(256, 100)
	if err != nil {
		t.Fatal(err)
	}
	if r%256 != 0 {
		t.Fatalf("misaligned: %#x", r)
	}
	// UsableSize reflects the size class.
	if u, err := a.UsableSize(q); err != nil || u < 5000 {
		t.Fatalf("usable = %d, %v", u, err)
	}
	for _, ptr := range []Ptr{q, r} {
		if err := a.Free(ptr); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestThreadMallocSurface(t *testing.T) {
	a := det()
	th := a.NewThread()
	defer func() {
		if err := th.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	p, err := th.Calloc(2, 100)
	if err != nil {
		t.Fatal(err)
	}
	p, err = th.Realloc(p, 300)
	if err != nil {
		t.Fatal(err)
	}
	if u, err := th.UsableSize(p); err != nil || u < 300 {
		t.Fatalf("usable %d, %v", u, err)
	}
	q, err := th.AlignedAlloc(64, 64)
	if err != nil || q%64 != 0 {
		t.Fatalf("aligned alloc: %#x, %v", q, err)
	}
	_ = th.Free(p)
	_ = th.Free(q)
}

func TestRuntimeKnobsPublic(t *testing.T) {
	clk := NewLogicalClock()
	a := New(WithSeed(1), WithClock(clk), WithMeshPeriod(time.Hour))
	// With a huge period, automatic meshing never fires; SetMeshPeriod(0)
	// plus a global free re-enables it.
	a.SetMeshPeriod(0)
	a.SetMeshingEnabled(false)
	if a.Mesh() != 0 {
		t.Fatal("disabled allocator meshed")
	}
	a.SetMeshingEnabled(true)
	// Stats plumbing for the new introspection APIs.
	p, _ := a.Malloc(100)
	cs := a.ClassStats()
	total := 0
	for _, c := range cs {
		total += c.Spans
	}
	if total == 0 {
		t.Fatal("no spans visible in ClassStats")
	}
	lg, _ := a.Malloc(1 << 20)
	if ls := a.LargeObjectStats(); ls.Objects != 1 {
		t.Fatalf("large stats: %+v", ls)
	}
	_ = a.Free(p)
	_ = a.Free(lg)
}

func TestSetMemoryLimit(t *testing.T) {
	a := det()
	a.SetMemoryLimit(64 * 1024) // 16 pages
	var ps []Ptr
	for {
		p, err := a.Malloc(4096)
		if err != nil {
			break
		}
		ps = append(ps, p)
	}
	if len(ps) == 0 || len(ps) > 16 {
		t.Fatalf("allocated %d pages under a 16-page budget", len(ps))
	}
	a.SetMemoryLimit(0)
	if _, err := a.Malloc(4096); err != nil {
		t.Fatalf("limit removal ineffective: %v", err)
	}
}
