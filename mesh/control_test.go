package mesh

import (
	"errors"
	"testing"
	"time"

	"repro/internal/frontend"
)

// TestControlKeyTable exercises every control key: round-trips for
// read-write keys, reads for read-only keys, triggers for write-only
// keys, and the error for the wrong direction. The cases list must stay
// in sync with ControlKeys, which the test enforces.
func TestControlKeyTable(t *testing.T) {
	cases := []struct {
		key      string
		set      any // nil = read-only key
		want     any // expected ReadControl after set (or current value); nil = write-only key
		readback bool
	}{
		{key: "mesh.period", set: 250 * time.Millisecond, want: 250 * time.Millisecond, readback: true},
		{key: "mesh.enabled", set: false, want: false, readback: true},
		{key: "mesh.background", set: true, want: true, readback: true},
		{key: "mesh.max_pause", set: 2 * time.Millisecond, want: 2 * time.Millisecond, readback: true},
		{key: "mesh.min_savings", set: 4096, want: 4096, readback: true},
		{key: "mesh.split_t", set: 32, want: 32, readback: true},
		{key: "mesh.compact", set: struct{}{}},
		{key: "remote.queue", set: false, want: false, readback: true},
		{key: "os.memory_limit", set: int64(1 << 20), want: int64(1 << 20), readback: true},
		{key: "pool.idle", want: 0, readback: true},
		{key: "pool.created", want: 0, readback: true},
		{key: "pool.flush", set: struct{}{}},
		{key: "frontend.enabled", set: true, want: true, readback: true},
		{key: "frontend.magazine_objects", set: 64, want: 64, readback: true},
		// No Allocator-level call has run, so the stripes are untouched.
		{key: "stats.frontend.hits", want: uint64(0), readback: true},
		{key: "stats.frontend.misses", want: uint64(0), readback: true},
		{key: "stats.frontend.fills", want: uint64(0), readback: true},
		{key: "stats.frontend.flushes", want: uint64(0), readback: true},
		{key: "stats.frontend.cached_objects", want: int64(0), readback: true},
		{key: "stats.rss", want: int64(0), readback: true},
		{key: "stats.live", want: int64(0), readback: true},
		{key: "stats.allocs", want: uint64(0), readback: true},
		{key: "stats.frees", want: uint64(0), readback: true},
		// mesh.enabled was set false above, so the mesh.compact trigger
		// legitimately ran no pass — and therefore recorded no pauses.
		{key: "stats.mesh_passes", want: uint64(0), readback: true},
		{key: "stats.mesh.pauses", want: PauseHistogram{}, readback: true},
		// No allocation has happened, so the contention introspection
		// counters sit at zero: no page-map lookups, no shard acquisitions,
		// no data-path translations, no seqlock retries.
		{key: "stats.arena.lookups", want: uint64(0), readback: true},
		{key: "stats.global.shard_acquires", want: uint64(0), readback: true},
		{key: "stats.vm.translations", want: uint64(0), readback: true},
		{key: "stats.vm.retries", want: uint64(0), readback: true},
		{key: "stats.remote.queued", want: uint64(0), readback: true},
		{key: "stats.remote.drained", want: uint64(0), readback: true},
		{key: "stats.pool.borrows", want: uint64(0), readback: true},
		{key: "stats.pool.returns", want: uint64(0), readback: true},
		{key: "trace.enabled", set: true, want: true, readback: true},
		{key: "trace.sample_rate", set: 8, want: 8, readback: true},
		// Sub-minimum buffer sizes clamp up, larger values round to the
		// next power of two.
		{key: "trace.buffer_events", set: 3000, want: 4096, readback: true},
		{key: "trace.offered", want: uint64(0), readback: true},
		{key: "trace.dropped", want: uint64(0), readback: true},
		// A zero-budget clause arms the site but can never fire, so the
		// plan write (which also enables the plane) is inert here. The
		// fault.enabled case after it doubles as the pause switch check.
		{key: "fault.plan", set: "meshd.stall:count=0", want: "meshd.stall:count=0", readback: true},
		{key: "fault.enabled", set: false, want: false, readback: true},
		{key: "fault.seed", set: 42, want: uint64(42), readback: true},
		{key: "oom.backpressure", set: true, want: true, readback: true},
		{key: "harden.enabled", set: true, want: true, readback: true},
		{key: "harden.quarantine", set: true, want: true, readback: true},
		{key: "harden.audit_spans", set: 4, want: 4, readback: true},
		{key: "debug.check_invariants", want: "", readback: true},
		{key: "stats.fault.injected", want: uint64(0), readback: true},
		{key: "stats.oom.recoveries", want: uint64(0), readback: true},
		{key: "stats.meshd.restarts", want: uint64(0), readback: true},
		{key: "stats.harden.checks", want: uint64(0), readback: true},
		{key: "stats.harden.violations", want: uint64(0), readback: true},
		{key: "stats.harden.passes", want: uint64(0), readback: true},
		{key: "stats.harden.quarantined", want: uint64(0), readback: true},
		{key: "stats.harden.settled", want: uint64(0), readback: true},
		{key: "stats.harden.retired", want: uint64(0), readback: true},
		{key: "stats.harden.lost_objects", want: uint64(0), readback: true},
		{key: "stats.harden.audited", want: uint64(0), readback: true},
	}

	covered := make(map[string]bool)
	a := New(WithSeed(1), WithClock(NewLogicalClock()))
	for _, tc := range cases {
		covered[tc.key] = true
		if tc.set != nil {
			if err := a.Control(tc.key, tc.set); err != nil {
				t.Fatalf("Control(%q, %v): %v", tc.key, tc.set, err)
			}
		} else if err := a.Control(tc.key, 0); !errors.Is(err, ErrControlReadOnly) {
			t.Fatalf("Control(%q) on read-only key returned %v", tc.key, err)
		}
		if tc.readback {
			got, err := a.ReadControl(tc.key)
			if err != nil {
				t.Fatalf("ReadControl(%q): %v", tc.key, err)
			}
			if got != tc.want {
				t.Fatalf("ReadControl(%q) = %v (%T), want %v (%T)", tc.key, got, got, tc.want, tc.want)
			}
		} else if _, err := a.ReadControl(tc.key); !errors.Is(err, ErrControlWriteOnly) {
			t.Fatalf("ReadControl(%q) on write-only key returned %v", tc.key, err)
		}
	}
	for _, key := range ControlKeys() {
		if !covered[key] {
			t.Errorf("control key %q has no test case", key)
		}
	}
	if len(covered) != len(ControlKeys()) {
		t.Errorf("test covers %d keys, ControlKeys lists %d", len(covered), len(ControlKeys()))
	}
}

func TestControlUnknownKey(t *testing.T) {
	a := New()
	if err := a.Control("mesh.bogus", 1); !errors.Is(err, ErrUnknownControl) {
		t.Fatalf("Control(unknown) = %v", err)
	}
	if _, err := a.ReadControl("bogus.key"); !errors.Is(err, ErrUnknownControl) {
		t.Fatalf("ReadControl(unknown) = %v", err)
	}
}

func TestControlBadTypes(t *testing.T) {
	a := New()
	bad := []struct {
		key string
		val any
	}{
		{"mesh.period", 3.5},
		{"mesh.period", "not-a-duration"},
		{"mesh.enabled", 1},
		{"remote.queue", 1},
		{"mesh.min_savings", "many"},
		{"mesh.split_t", false},
		{"mesh.split_t", 0}, // must be positive
		{"os.memory_limit", 1.0},
		{"os.memory_limit", int64(-1)},
		{"trace.enabled", 1},
		{"trace.sample_rate", 0},
		{"trace.sample_rate", "fast"},
		{"trace.buffer_events", 0},
		{"trace.buffer_events", false},
		{"fault.enabled", 1},
		{"fault.plan", 3},                     // not a string
		{"fault.plan", "bogus.site:rate=2"},   // unknown site
		{"fault.plan", "vm.commit:rate=0"},    // rate must be >= 1
		{"fault.plan", "vm.commit:bogus=1"},   // unknown clause key
		{"fault.plan", "vm.commit:mode=soft"}, // unknown mode
		{"fault.seed", int64(-1)},
		{"fault.seed", "entropy"},
		{"oom.backpressure", "yes"},
		{"harden.enabled", 1},
		{"harden.enabled", "on"},
		{"harden.quarantine", 1},
		{"harden.audit_spans", int64(-1)},
		{"harden.audit_spans", "all"},
		{"harden.audit_spans", 1.5},
		{"frontend.enabled", 1},
		{"frontend.enabled", "on"},
		{"frontend.magazine_objects", int64(-1)},
		{"frontend.magazine_objects", "many"},
		{"frontend.magazine_objects", frontend.MaxMagazineObjects + 1},
	}
	for _, tc := range bad {
		if err := a.Control(tc.key, tc.val); !errors.Is(err, ErrControlType) {
			t.Errorf("Control(%q, %v (%T)) = %v, want ErrControlType", tc.key, tc.val, tc.val, err)
		}
	}

	// A rejected plan write must leave the previously armed plan — and the
	// enable switch — untouched.
	if err := a.Control("fault.plan", "meshd.stall:count=0"); err != nil {
		t.Fatal(err)
	}
	if err := a.Control("fault.plan", "bogus.site"); !errors.Is(err, ErrControlType) {
		t.Fatalf("invalid plan write = %v, want ErrControlType", err)
	}
	if got, _ := a.ReadControl("fault.plan"); got != "meshd.stall:count=0" {
		t.Fatalf("rejected plan write clobbered the plan: %q", got)
	}
	if got, _ := a.ReadControl("fault.enabled"); got != true {
		t.Fatalf("rejected plan write flipped fault.enabled to %v", got)
	}

	// Rejected harden.* writes must leave the plane untouched, like the
	// fault.* surface: the bad bools above never flipped the enable bit,
	// and a rejected budget write keeps the previous budget.
	if got, _ := a.ReadControl("harden.enabled"); got != false {
		t.Fatalf("rejected harden.enabled writes flipped the switch to %v", got)
	}
	if err := a.Control("harden.audit_spans", 16); err != nil {
		t.Fatal(err)
	}
	if err := a.Control("harden.audit_spans", int64(-5)); !errors.Is(err, ErrControlType) {
		t.Fatalf("negative harden.audit_spans = %v, want ErrControlType", err)
	}
	if got, _ := a.ReadControl("harden.audit_spans"); got != 16 {
		t.Fatalf("rejected harden.audit_spans write clobbered the budget: %v", got)
	}

	// Same for the front end: rejected writes leave the capacity (and the
	// enable switch, which defaults on) untouched.
	if err := a.Control("frontend.magazine_objects", 32); err != nil {
		t.Fatal(err)
	}
	if err := a.Control("frontend.magazine_objects", frontend.MaxMagazineObjects+1); !errors.Is(err, ErrControlType) {
		t.Fatalf("oversized frontend.magazine_objects = %v, want ErrControlType", err)
	}
	if got, _ := a.ReadControl("frontend.magazine_objects"); got != 32 {
		t.Fatalf("rejected frontend.magazine_objects write clobbered the capacity: %v", got)
	}
	if got, _ := a.ReadControl("frontend.enabled"); got != true {
		t.Fatalf("rejected frontend writes flipped frontend.enabled to %v", got)
	}
}

// TestControlValuesTakeEffect checks the knobs actually steer the
// allocator, not just a settings map.
func TestControlValuesTakeEffect(t *testing.T) {
	clock := NewLogicalClock()
	a := New(WithSeed(9), WithClock(clock))

	// Build a meshable heap: many sparse spans.
	var live []Ptr
	for i := 0; i < 16*256; i++ {
		p, err := a.Malloc(16)
		if err != nil {
			t.Fatal(err)
		}
		if i%16 == 0 {
			live = append(live, p)
		} else if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}

	// With meshing disabled, mesh.compact and Mesh() are no-ops.
	if err := a.Control("mesh.enabled", false); err != nil {
		t.Fatal(err)
	}
	if released := a.Mesh(); released != 0 {
		t.Fatalf("Mesh released %d spans while disabled", released)
	}
	if err := a.Control("mesh.enabled", true); err != nil {
		t.Fatal(err)
	}
	if err := a.Control("mesh.compact", nil); err != nil {
		t.Fatal(err)
	}
	passes, err := a.ReadControl("stats.mesh_passes")
	if err != nil {
		t.Fatal(err)
	}
	if passes.(uint64) == 0 {
		t.Fatal("mesh.compact ran no pass")
	}

	// os.memory_limit must make further allocation fail, and lifting it
	// must make allocation succeed again.
	if err := a.Control("os.memory_limit", int64(PageSize)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Malloc(MaxSmallSize * 4); err == nil {
		t.Fatal("allocation under a 1-page memory limit succeeded")
	}
	if err := a.Control("os.memory_limit", 0); err != nil {
		t.Fatal(err)
	}
	p, err := a.Malloc(MaxSmallSize * 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	_ = live
}

// TestContentionIntrospection drives traffic shapes with known lock
// behaviour through the allocator and checks the contention counters move
// accordingly: local frees bump only the lock-free lookup counter; with
// message-passing disabled, remote (cross-thread) frees acquire exactly
// one shard per free and batch frees one shard per class; with it enabled
// (the default), remote frees queue on the owner's heap and take no shard
// lock at all beyond refill setup.
func TestContentionIntrospection(t *testing.T) {
	readU64 := func(t *testing.T, a *Allocator, key string) uint64 {
		t.Helper()
		v, err := a.ReadControl(key)
		if err != nil {
			t.Fatalf("ReadControl(%q): %v", key, err)
		}
		return v.(uint64)
	}
	cases := []struct {
		name         string
		remoteQueues bool
		run          func(t *testing.T, a *Allocator)
		// counter deltas: lookups must grow by at least minLookups, shard
		// acquisitions by at least minShards and at most maxShards, and
		// queued message-passed frees by exactly wantQueued.
		minLookups, minShards, maxShards uint64
		wantQueued                       uint64
	}{
		{
			name: "local-free-lookup-only",
			run: func(t *testing.T, a *Allocator) {
				th := a.NewThread()
				defer th.Close()
				p, err := th.Malloc(64)
				if err != nil {
					t.Fatal(err)
				}
				if err := th.Free(p); err != nil {
					t.Fatal(err)
				}
			},
			// One local free: one lock-free lookup; shard locks only for
			// the initial refill (alloc + registry), never for the free.
			minLookups: 1,
			minShards:  1,
			maxShards:  4,
		},
		{
			name: "remote-frees-take-shards",
			run: func(t *testing.T, a *Allocator) {
				th := a.NewThread()
				defer th.Close()
				other := a.NewThread()
				defer other.Close()
				for i := 0; i < 8; i++ {
					p, err := th.Malloc(64)
					if err != nil {
						t.Fatal(err)
					}
					if err := other.Free(p); err != nil {
						t.Fatal(err)
					}
				}
			},
			// Each remote free with remote.queue off: one lock-free miss
			// on the freeing thread, then one shard acquisition (plus a
			// re-lookup) on the global path.
			minLookups: 16,
			minShards:  8,
			maxShards:  64,
		},
		{
			name:         "remote-frees-queue-without-shards",
			remoteQueues: true,
			run: func(t *testing.T, a *Allocator) {
				th := a.NewThread()
				defer th.Close()
				other := a.NewThread()
				defer other.Close()
				for i := 0; i < 8; i++ {
					p, err := th.Malloc(64)
					if err != nil {
						t.Fatal(err)
					}
					if err := other.Free(p); err != nil {
						t.Fatal(err)
					}
				}
			},
			// Each remote free with remote.queue on: one lock-free miss,
			// one CAS onto the owner's queue — the only shard acquisitions
			// left are th's single refill (span alloc + registry).
			minLookups: 8,
			minShards:  1,
			maxShards:  4,
			wantQueued: 8,
		},
		{
			name: "batch-free-one-shard-per-class",
			run: func(t *testing.T, a *Allocator) {
				th := a.NewThread()
				defer th.Close()
				other := a.NewThread()
				defer other.Close()
				var ptrs []Ptr
				for _, size := range []int{16, 16, 16, 256, 256, 256} {
					p, err := th.Malloc(size)
					if err != nil {
						t.Fatal(err)
					}
					ptrs = append(ptrs, p)
				}
				if err := other.FreeBatch(ptrs); err != nil {
					t.Fatal(err)
				}
			},
			// Six remote frees in two classes with remote.queue off: the
			// batch partition takes each of the two shard locks once, not
			// six times. Setup refills take a few more, so bound loosely
			// from above but well under one-acquisition-per-free (6) plus
			// setup.
			minLookups: 12,
			minShards:  2,
			maxShards:  10,
		},
		{
			name:         "batch-free-queues-without-shards",
			remoteQueues: true,
			run: func(t *testing.T, a *Allocator) {
				th := a.NewThread()
				defer th.Close()
				other := a.NewThread()
				defer other.Close()
				var ptrs []Ptr
				for _, size := range []int{16, 16, 16, 256, 256, 256} {
					p, err := th.Malloc(size)
					if err != nil {
						t.Fatal(err)
					}
					ptrs = append(ptrs, p)
				}
				if err := other.FreeBatch(ptrs); err != nil {
					t.Fatal(err)
				}
			},
			// The whole remote batch coalesces onto th's queue: the only
			// shard acquisitions are th's two refills.
			minLookups: 6,
			minShards:  2,
			maxShards:  8,
			wantQueued: 6,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := New(WithSeed(1), WithClock(NewLogicalClock()), WithMeshing(false),
				WithRemoteQueues(tc.remoteQueues))
			look0 := readU64(t, a, "stats.arena.lookups")
			shard0 := readU64(t, a, "stats.global.shard_acquires")
			tc.run(t, a)
			dLook := readU64(t, a, "stats.arena.lookups") - look0
			dShard := readU64(t, a, "stats.global.shard_acquires") - shard0
			if dLook < tc.minLookups {
				t.Errorf("arena lookups grew %d, want >= %d", dLook, tc.minLookups)
			}
			if dShard < tc.minShards || dShard > tc.maxShards {
				t.Errorf("shard acquisitions grew %d, want in [%d, %d]",
					dShard, tc.minShards, tc.maxShards)
			}
			if got := readU64(t, a, "stats.remote.queued"); got != tc.wantQueued {
				t.Errorf("stats.remote.queued = %d, want %d", got, tc.wantQueued)
			}
			if drained := readU64(t, a, "stats.remote.drained"); drained != tc.wantQueued {
				t.Errorf("stats.remote.drained = %d, want %d (all heaps closed)", drained, tc.wantQueued)
			}
		})
	}
}

// TestDeprecatedWrappersStillWork pins the compatibility contract: the old
// setter methods must keep compiling and steering the same state as the
// Control surface.
func TestDeprecatedWrappersStillWork(t *testing.T) {
	a := New()
	a.SetMeshPeriod(123 * time.Millisecond)
	if got, _ := a.ReadControl("mesh.period"); got != 123*time.Millisecond {
		t.Fatalf("SetMeshPeriod not visible through ReadControl: %v", got)
	}
	a.SetMeshingEnabled(false)
	if got, _ := a.ReadControl("mesh.enabled"); got != false {
		t.Fatalf("SetMeshingEnabled not visible through ReadControl: %v", got)
	}
	a.SetMemoryLimit(8 * PageSize)
	if got, _ := a.ReadControl("os.memory_limit"); got != int64(8*PageSize) {
		t.Fatalf("SetMemoryLimit not visible through ReadControl: %v", got)
	}
	a.SetMemoryLimit(0)
}

// TestVMCounterShapes pins the translation/retry counters to traffic
// shapes: a multi-page access through one span costs one translation, each
// additional access costs one more, and an uncontended allocator never
// retries. Then a meshing pass racing live readers must leave the data
// readable with retries still observable (usually 0, but any value is
// legal — the test asserts the counter reads, not the schedule).
func TestVMCounterShapes(t *testing.T) {
	readU64 := func(t *testing.T, a *Allocator, key string) uint64 {
		t.Helper()
		v, err := a.ReadControl(key)
		if err != nil {
			t.Fatalf("ReadControl(%q): %v", key, err)
		}
		return v.(uint64)
	}
	a := New(WithSeed(1), WithClock(NewLogicalClock()))
	p, err := a.Malloc(8192)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Memset(p, 0xDD, 8192); err != nil {
		t.Fatal(err)
	}
	tr0 := readU64(t, a, "stats.vm.translations")
	buf := make([]byte, 8192)
	if err := a.Read(p, buf); err != nil {
		t.Fatal(err)
	}
	if d := readU64(t, a, "stats.vm.translations") - tr0; d != 1 {
		t.Errorf("whole-object read cost %d translations, want 1 (single span run)", d)
	}
	for i := 0; i < 64; i++ {
		if err := a.Write(p+uint64(i)*64, buf[:64]); err != nil {
			t.Fatal(err)
		}
	}
	if d := readU64(t, a, "stats.vm.translations") - tr0; d < 65 {
		t.Errorf("translations grew %d over 1 read + 64 writes, want >= 65", d)
	}
	if r := readU64(t, a, "stats.vm.retries"); r != 0 {
		t.Errorf("uncontended allocator recorded %d retries", r)
	}
	// Build meshable garbage and run a pass while rereading the object:
	// contents must hold (§4.5.2) and the counters must stay readable.
	var junk []Ptr
	for i := 0; i < 4*256; i++ {
		q, err := a.Malloc(16)
		if err != nil {
			t.Fatal(err)
		}
		junk = append(junk, q)
	}
	for i, q := range junk {
		if i%4 != 0 {
			if err := a.Free(q); err != nil {
				t.Fatal(err)
			}
		}
	}
	a.Mesh()
	if err := a.Read(p, buf); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0xDD {
			t.Fatalf("byte %d corrupted across mesh: %#x", i, b)
		}
	}
	_ = readU64(t, a, "stats.vm.retries")
}
