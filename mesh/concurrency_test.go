package mesh

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestConcurrentSharedAllocator is the headline concurrency stress test:
// 12 goroutines hammer one shared Allocator with every kind of operation —
// scalar and batch malloc/free, reads and writes, forced meshing, stats,
// control reads and writes — with zero external synchronization. Run under
// -race this exercises the pooled-heap hand-off, the remote-free path, the
// meshing write barrier, and the snapshot paths against each other.
func TestConcurrentSharedAllocator(t *testing.T) {
	a := New(WithSeed(11))
	const (
		workers = 12
		rounds  = 300
	)
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var live []Ptr
			buf := []byte{byte(w + 1)}
			for i := 0; i < rounds; i++ {
				switch i % 6 {
				case 0: // scalar malloc + write
					p, err := a.Malloc(16 + (i%8)*32)
					if err != nil {
						errc <- err
						return
					}
					if err := a.Write(p, buf); err != nil {
						errc <- err
						return
					}
					live = append(live, p)
				case 1: // batch malloc
					sizes := []int{16, 64, 256, 1024}
					ptrs, err := a.MallocBatch(sizes)
					if err != nil {
						errc <- err
						return
					}
					live = append(live, ptrs...)
				case 2: // scalar free of the oldest object
					if len(live) > 0 {
						if err := a.Free(live[0]); err != nil {
							errc <- err
							return
						}
						live = live[1:]
					}
				case 3: // batch free of half the live set
					if n := len(live) / 2; n > 0 {
						if err := a.FreeBatch(live[:n]); err != nil {
							errc <- err
							return
						}
						live = live[n:]
					}
				case 4: // read back + snapshots
					if len(live) > 0 {
						rb := make([]byte, 1)
						if err := a.Read(live[len(live)-1], rb); err != nil {
							errc <- err
							return
						}
					}
					_ = a.Stats()
					_ = a.RSS()
					_ = a.ClassStats()
				case 5: // meshing and runtime controls
					if w == 0 {
						a.Mesh()
					}
					if _, err := a.ReadControl("stats.live"); err != nil {
						errc <- err
						return
					}
					if err := a.Control("mesh.period", 50*time.Millisecond); err != nil {
						errc <- err
						return
					}
				}
			}
			if err := a.FreeBatch(live); err != nil {
				errc <- err
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Quiesce: return pooled heaps' spans to the global heap and verify
	// every structural invariant, including the live-byte census.
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	requireCleanInvariants(t, a)
	st := a.Stats()
	if st.Allocs != st.Frees {
		t.Fatalf("allocs %d != frees %d after all workers freed everything", st.Allocs, st.Frees)
	}
	if st.Live != 0 {
		t.Fatalf("live %d after all frees", st.Live)
	}
	if st.InvalidFree != 0 {
		t.Fatalf("%d invalid frees recorded", st.InvalidFree)
	}
}

// TestConcurrentMixedThreadsAndPool mixes explicit Threads (the pinned
// fast path) with pooled Allocator calls, including goroutines freeing
// objects allocated by other goroutines' Threads — the cross-thread free
// path of §4.4.4.
func TestConcurrentMixedThreadsAndPool(t *testing.T) {
	a := New(WithSeed(13))
	const workers = 8
	ptrs := make(chan Ptr, workers*64)
	var wg sync.WaitGroup
	errc := make(chan error, 2*workers)

	// Half the workers allocate on explicit Threads and publish pointers.
	for w := 0; w < workers/2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := a.NewThread()
			for i := 0; i < 128; i++ {
				p, err := th.Malloc(32)
				if err != nil {
					errc <- err
					return
				}
				ptrs <- p
			}
			if err := th.Close(); err != nil {
				errc <- err
			}
		}(w)
	}
	// The other half free whatever arrives through the pooled API.
	var freed sync.WaitGroup
	for w := 0; w < workers/2; w++ {
		freed.Add(1)
		go func() {
			defer freed.Done()
			for p := range ptrs {
				if err := a.Free(p); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(ptrs)
	freed.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	requireCleanInvariants(t, a)
	if st := a.Stats(); st.Live != 0 || st.Allocs != st.Frees {
		t.Fatalf("stats not balanced: %+v", st)
	}
}

// TestPoolReusesHeaps checks that sequential Allocator calls recycle one
// heap instead of growing the population: with the front end on, the heap
// lives on a stripe (one pool borrow ever, for the cold start); with it
// off, every call round-trips through the pool exactly as before the
// stripe layer existed.
func TestPoolReusesHeaps(t *testing.T) {
	run := func(t *testing.T, a *Allocator) {
		t.Helper()
		for i := 0; i < 100; i++ {
			p, err := a.Malloc(64)
			if err != nil {
				t.Fatal(err)
			}
			if err := a.Free(p); err != nil {
				t.Fatal(err)
			}
		}
		created, err := a.ReadControl("pool.created")
		if err != nil {
			t.Fatal(err)
		}
		if created.(int) != 1 {
			t.Fatalf("sequential use created %d heaps, want 1", created)
		}
	}
	t.Run("frontend", func(t *testing.T) {
		a := New(WithSeed(3))
		run(t, a)
		// The heap is parked on the caller's stripe, not in the pool, and
		// only the cold start paid a pool borrow.
		if idle, _ := a.ReadControl("pool.idle"); idle.(int) != 0 {
			t.Fatalf("pool.idle = %d, want 0 (heap cached on a stripe)", idle)
		}
		if borrows, _ := a.ReadControl("stats.pool.borrows"); borrows.(uint64) != 1 {
			t.Fatalf("stats.pool.borrows = %d, want 1 (cold start only)", borrows)
		}
		hits, _ := a.ReadControl("stats.frontend.hits")
		misses, _ := a.ReadControl("stats.frontend.misses")
		if hits.(uint64)+misses.(uint64) != 200 || misses.(uint64) != 1 {
			t.Fatalf("stripe traffic hits=%d misses=%d, want 199/1", hits, misses)
		}
		// Flush moves the heap back through the pool and relinquishes it.
		if err := a.Flush(); err != nil {
			t.Fatal(err)
		}
		if idle, _ := a.ReadControl("pool.idle"); idle.(int) != 0 {
			t.Fatalf("pool.idle = %d after Flush, want 0", idle)
		}
	})
	t.Run("pool-only", func(t *testing.T) {
		a := New(WithSeed(3), WithFrontend(false))
		run(t, a)
		if idle, _ := a.ReadControl("pool.idle"); idle.(int) != 1 {
			t.Fatalf("pool.idle = %d, want 1", idle)
		}
		if borrows, _ := a.ReadControl("stats.pool.borrows"); borrows.(uint64) != 200 {
			t.Fatalf("stats.pool.borrows = %d, want 200 (one per call)", borrows)
		}
		if hits, _ := a.ReadControl("stats.frontend.hits"); hits.(uint64) != 0 {
			t.Fatalf("stats.frontend.hits = %d with the front end off, want 0", hits)
		}
	})
}

// TestFlushMakesPooledSpansMeshable verifies the lifecycle story: spans
// held by idle pooled heaps are not meshing candidates until Flush
// relinquishes them.
func TestFlushMakesPooledSpansMeshable(t *testing.T) {
	a := New(WithSeed(5), WithClock(NewLogicalClock()))
	// Build a fragmented heap through the pooled API only.
	var ptrs []Ptr
	for i := 0; i < 16*256; i++ {
		p, err := a.Malloc(16)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	for i, p := range ptrs {
		if i%16 == 0 {
			continue
		}
		if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	if idle, _ := a.ReadControl("pool.idle"); idle.(int) != 0 {
		t.Fatalf("pool.idle = %d after Flush, want 0", idle)
	}
	before := a.RSS()
	if released := a.Mesh(); released == 0 {
		t.Fatal("meshing released nothing on a sparsely occupied heap")
	}
	if after := a.RSS(); after >= before {
		t.Fatalf("RSS %d did not drop from %d after meshing", after, before)
	}
	requireCleanInvariants(t, a)
}

// TestConcurrentErrorsAreSafe drives invalid frees from many goroutines;
// they must be reported as errors and counted, never corrupt state.
func TestConcurrentErrorsAreSafe(t *testing.T) {
	a := New(WithSeed(17))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := a.Free(Ptr(0xdead0000 + uint64(w*64+i)*16)); err == nil {
					t.Error("free of never-allocated pointer succeeded")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if st := a.Stats(); st.InvalidFree != 8*50 {
		t.Fatalf("InvalidFree = %d, want %d", st.InvalidFree, 8*50)
	}
	requireCleanInvariants(t, a)
	// Error classification survives the concurrent paths. Flush between
	// the two frees so the second one takes the global path, where double
	// frees are detected (§4.4.4); keep a second object live so the span
	// outlives the first free.
	ptrs, err := a.MallocBatch([]int{64, 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Free(ptrs[0]); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(ptrs[0]); !errors.Is(err, ErrDoubleFree) {
		t.Fatalf("double free returned %v, want ErrDoubleFree", err)
	}
	if err := a.Free(ptrs[1]); err != nil {
		t.Fatal(err)
	}
}

// TestScaleStressCrossClass is the sharded-free-path stress test: 16
// goroutines, each allocating from a pinned Thread in its own size class,
// exchange object batches around a ring so that every free is a remote
// free in a different shard than the freeing thread's neighbours —
// alternating scalar frees (one shard acquisition each) and batch frees
// (one shard acquisition per class in the batch) — while the background
// daemon meshes continuously underneath. Under -race this drives the
// per-class shard locks against the mesh barrier ordering: writers fault
// on protect windows and wait on the barrier, frees race meshing fix-ups
// in their shard, and content carried across the hand-off proves no write
// or relocation was lost.
func TestScaleStressCrossClass(t *testing.T) {
	a := New(WithSeed(31),
		WithBackgroundMeshing(true),
		WithMeshPeriod(0), // every nudge is due
		WithMaxMeshPause(50*time.Microsecond),
		WithMinMeshSavings(1)) // never disarm
	defer a.Close()

	classSizes := []int{16, 32, 64, 128, 256, 512, 1024, 2048}
	const (
		workers = 16
		rounds  = 60
		objs    = 32
	)
	rings := make([]chan []Ptr, workers)
	for i := range rings {
		rings[i] = make(chan []Ptr, rounds+1) // senders never block
	}
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := a.NewThread()
			defer th.Close()
			size := classSizes[w%len(classSizes)]
			val := byte(w + 1)
			expect := byte((w-1+workers)%workers + 1)
			buf := make([]byte, 1)
			for r := 0; r < rounds; r++ {
				batch := make([]Ptr, objs)
				for j := range batch {
					p, err := th.Malloc(size)
					if err != nil {
						errc <- err
						return
					}
					if err := a.Write(p, []byte{val}); err != nil {
						errc <- err
						return
					}
					batch[j] = p
				}
				rings[(w+1)%workers] <- batch
				var got []Ptr
				select {
				case got = <-rings[w]:
				case <-time.After(30 * time.Second):
					errc <- errors.New("ring stalled: a neighbour died")
					return
				}
				for _, p := range got {
					if err := a.Read(p, buf); err != nil {
						errc <- err
						return
					}
					if buf[0] != expect {
						errc <- errLost{p, buf[0], expect}
						return
					}
				}
				if r%2 == 0 {
					if err := th.FreeBatch(got); err != nil {
						errc <- err
						return
					}
				} else {
					for _, p := range got {
						if err := th.Free(p); err != nil {
							errc <- err
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	a.Mesh()
	requireCleanInvariants(t, a)
	if live := a.Stats().Live; live != 0 {
		t.Fatalf("live = %d after full drain", live)
	}
}
