package main

// meshbench compare — the cross-PR perf gate. Each FILE argument is a
// fresh `meshbench -json` artifact; it is diffed against the committed
// baseline of the same basename under -baseline (bench/baseline by
// default). Throughput may drop up to -threshold percent before the gate
// fails; shard-acquire counts may grow up to -counter-threshold percent.
// Exit status 1 means at least one row regressed (or vanished).

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
)

func compareCmd(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	baseDir := fs.String("baseline", filepath.Join("bench", "baseline"),
		"directory holding committed baseline JSON files")
	threshold := fs.Float64("threshold", 20,
		"allowed ops_per_sec drop in percent before a row fails")
	counterThreshold := fs.Float64("counter-threshold", 50,
		"allowed shard_acquires growth in percent before a row fails")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr,
			"usage: meshbench compare [-baseline DIR] [-threshold PCT] [-counter-threshold PCT] FILE...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		fs.Usage()
		os.Exit(2)
	}
	opt := experiments.CompareOptions{
		Threshold:        *threshold,
		CounterThreshold: *counterThreshold,
	}
	failed := 0
	for _, fresh := range fs.Args() {
		baseline := filepath.Join(*baseDir, filepath.Base(fresh))
		rep, err := experiments.CompareBenchFiles(baseline, fresh, opt)
		if err != nil {
			return err
		}
		fmt.Printf("\n== %s vs %s ==\n", fresh, baseline)
		fmt.Printf("%-28s %-16s %14s %14s %9s %6s\n",
			"row", "metric", "baseline", "fresh", "delta", "")
		for _, d := range rep.Deltas {
			verdict := "ok"
			if d.Regress {
				verdict = "FAIL"
			}
			fmt.Printf("%-28s %-16s %14.0f %14.0f %+8.1f%% %6s\n",
				d.Row, d.Metric, d.Old, d.New, d.Delta, verdict)
		}
		for _, m := range rep.Missing {
			fmt.Printf("%-28s %-16s %14s %14s %9s %6s\n", m, "(missing row)", "-", "-", "-", "FAIL")
		}
		if n := rep.Regressions(); n > 0 {
			fmt.Printf("%d regression(s) past threshold (ops_per_sec -%g%%, shard_acquires +%g%%)\n",
				n, *threshold, *counterThreshold)
			failed += n
		} else {
			fmt.Printf("within thresholds (ops_per_sec -%g%%, shard_acquires +%g%%)\n",
				*threshold, *counterThreshold)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d benchmark regression(s)", failed)
	}
	return nil
}
