// Command meshbench regenerates every table and figure of the Mesh paper's
// evaluation (§6) plus the analytical validations (§2.2, §5).
//
// Usage:
//
//	meshbench [-scale N] [-csv] <experiment>
//
// Experiments:
//
//	fig6      Firefox/Speedometer RSS over time (Mesh vs jemalloc)
//	fig7      Redis RSS over time (jemalloc+activedefrag, Mesh, Mesh no-mesh)
//	fig8      Ruby microbenchmark RSS over time (4 configurations)
//	spec      SPECint-like suite peak RSS and runtime (Mesh vs glibc)
//	prob      mesh-probability validation (§2.2, §5.2)
//	lemma53   SplitMesher guarantee and t sweep (§5.3)
//	triangle  triangle scarcity in meshing graphs (§5.2)
//	ablation  §6.3 randomization ablation table
//	robson    §1 motivation: OOM survival under a memory budget
//	conc      concurrent throughput: pooled vs thread heaps, scalar vs batch
//	pause     foreground vs background meshing: tail stalls and RSS (§4.5)
//	scale     free/refill throughput vs goroutine count (sharded global heap)
//	datapath  object read/write/memset throughput vs goroutine count (lock-free VM translation)
//	remote    producer–consumer remote frees: message-passing queues vs shard locks
//	chaos     fault-injection stress: every site armed across 4 seeds, exact accounting demanded
//	chaos-hardened  corruption-injection stress: canary/poison sites armed, violations == injections demanded
//	all       everything above
//
// -scale divides workload sizes (1 = the paper's full parameters; larger
// values run proportionally smaller and faster). -csv additionally dumps
// the RSS time series for the figure experiments. -json FILE writes the
// scale or datapath experiment's result as JSON (the CI perf-trajectory
// artifacts).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
	"repro/internal/stats"
)

var (
	scale   = flag.Int("scale", 1, "divide workload sizes by this factor (1 = paper scale)")
	csvOut  = flag.Bool("csv", false, "also print RSS time series as CSV")
	jsonOut = flag.String("json", "", "write the scale/datapath experiment's result as JSON to this file")
)

func main() {
	// "compare" is a subcommand with its own flags, not an experiment:
	// it diffs fresh -json artifacts against committed baselines and
	// exits nonzero on regressions (the CI perf gate).
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		if err := compareCmd(os.Args[2:]); err != nil {
			fmt.Fprintf(os.Stderr, "meshbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: meshbench [-scale N] [-csv] [-json FILE] <fig6|fig7|fig8|spec|prob|lemma53|triangle|ablation|robson|conc|pause|scale|frontend|datapath|remote|chaos|chaos-hardened|all>\n")
		fmt.Fprintf(os.Stderr, "       meshbench compare [-baseline DIR] [-threshold PCT] [-counter-threshold PCT] FILE...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0)); err != nil {
		fmt.Fprintf(os.Stderr, "meshbench: %v\n", err)
		os.Exit(1)
	}
}

func run(what string) error {
	switch what {
	case "fig6":
		return fig6()
	case "fig7":
		return fig7()
	case "fig8":
		return fig8()
	case "spec":
		return spec()
	case "prob":
		prob()
		return nil
	case "lemma53":
		lemma53()
		return nil
	case "triangle":
		triangle()
		return nil
	case "ablation":
		return ablation()
	case "robson":
		return robson()
	case "conc":
		return conc()
	case "pause":
		return pause()
	case "scale":
		return scaleExp()
	case "frontend":
		return frontendExp()
	case "datapath":
		return datapath()
	case "remote":
		return remote()
	case "chaos":
		return chaos()
	case "chaos-hardened":
		return chaosHardened()
	case "all":
		runningAll = true
		for _, f := range []func() error{fig6, fig7, fig8, spec, ablation, robson, conc, pause, scaleExp, frontendExp, datapath, remote, chaos, chaosHardened} {
			if err := f(); err != nil {
				return err
			}
		}
		prob()
		lemma53()
		triangle()
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", what)
	}
}

// runningAll is set when the "all" experiment is driving the others;
// jsonPath then derives a distinct artifact name per experiment so they
// do not overwrite each other.
var runningAll bool

// jsonPath returns the -json target for one JSON-producing experiment:
// the flag value as given for a single-experiment invocation, or — under
// "all" — the flag value with the experiment name inserted before the
// extension. Empty when -json is unset.
func jsonPath(exp string) string {
	if *jsonOut == "" {
		return ""
	}
	if !runningAll {
		return *jsonOut
	}
	ext := filepath.Ext(*jsonOut)
	return strings.TrimSuffix(*jsonOut, ext) + "_" + exp + ext
}

// writeJSON dumps a result as indented JSON to path.
func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func header(title string) {
	fmt.Printf("\n== %s ==\n", title)
}

func fig6() error {
	header("Figure 6: Firefox/Speedometer — RSS over benchmark run")
	res, err := experiments.Fig6(*scale)
	if err != nil {
		return err
	}
	fmt.Printf("%-22s %12s %12s %14s %12s\n", "allocator", "mean RSS MiB", "peak RSS MiB", "wall time", "ops/sec")
	for _, r := range res.Rows {
		fmt.Printf("%-22s %12.2f %12.2f %14v %12.0f\n",
			r.Allocator, r.MeanRSS/(1<<20), stats.MiB(r.PeakRSS), r.WallTime.Round(1e6), r.OpsPerSec)
	}
	fmt.Printf("mesh mean-RSS change vs baseline: %+.1f%%  (paper: -16%%)\n", res.DeltaPercent)
	if *csvOut {
		for _, r := range res.Rows {
			if err := r.Series.WriteCSV(os.Stdout); err != nil {
				return err
			}
		}
	}
	return nil
}

func fig7() error {
	header("Figure 7: Redis — RSS over run, and §6.2.2 compaction timing")
	res, err := experiments.Fig7(*scale)
	if err != nil {
		return err
	}
	fmt.Printf("%-26s %12s %12s %12s %12s %12s\n",
		"configuration", "final MiB", "peak MiB", "insert", "defrag", "meshing")
	for _, r := range res.Rows {
		fmt.Printf("%-26s %12.2f %12.2f %12v %12v %12v\n",
			r.Allocator, stats.MiB(r.FinalRSS), stats.MiB(r.PeakRSS),
			r.InsertTime.Round(1e6), r.DefragTime.Round(1e6), r.MeshTime.Round(1e6))
	}
	fmt.Printf("mesh savings vs no-meshing: %.1f%%  (paper: 39%%)\n", res.SavingsPercent)
	if *csvOut {
		for _, r := range res.Rows {
			if err := r.Series.WriteCSV(os.Stdout); err != nil {
				return err
			}
		}
	}
	return nil
}

func fig8() error {
	header("Figure 8: Ruby microbenchmark — RSS over run, 4 configurations")
	res, err := experiments.Fig8(*scale)
	if err != nil {
		return err
	}
	fmt.Printf("%-22s %12s %12s %14s\n", "configuration", "mean RSS MiB", "peak RSS MiB", "wall time")
	for _, r := range res.Rows {
		fmt.Printf("%-22s %12.2f %12.2f %14v\n",
			r.Allocator, r.MeanRSS/(1<<20), stats.MiB(r.PeakRSS), r.WallTime.Round(1e6))
	}
	fmt.Printf("randomization savings (mesh vs no-rand): %.1f%%  (paper: ~16 points, 19%% vs 3%%)\n",
		res.RandSavingsPercent)
	if *csvOut {
		for _, r := range res.Rows {
			if err := r.Series.WriteCSV(os.Stdout); err != nil {
				return err
			}
		}
	}
	return nil
}

func spec() error {
	header("§6.2.3: SPECint-like suite — peak RSS and runtime, Mesh vs glibc")
	res, err := experiments.Spec(*scale)
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %12s %12s %9s %12s %12s\n",
		"benchmark", "mesh MiB", "glibc MiB", "mem Δ%", "mesh time", "glibc time")
	for _, r := range res.Rows {
		fmt.Printf("%-16s %12.2f %12.2f %+8.1f%% %12v %12v\n",
			r.Benchmark, stats.MiB(r.MeshPeak), stats.MiB(r.GlibcPeak),
			r.MemDeltaPc, r.MeshTime.Round(1e6), r.GlibcTime.Round(1e6))
	}
	fmt.Printf("geomean mem ratio mesh/glibc: %.3f  (paper: 0.976, i.e. -2.4%%)\n", res.GeomeanMemRatio)
	return nil
}

func prob() {
	header("§2.2/§5.2: mesh probability — theory vs Monte Carlo")
	res := experiments.Prob(20000)
	fmt.Printf("%8s %8s %12s %12s\n", "slots b", "live r", "theory q", "empirical q")
	for _, r := range res.Rows {
		fmt.Printf("%8d %8d %12.5f %12.5f\n", r.SpanObjects, r.LiveObjects, r.TheoryQ, r.EmpiricalQ)
	}
	fmt.Printf("worst case (§2.2, b=256, n=64): log10 P(unmeshable) = %.1f  (paper: ≈ -152)\n",
		res.UnmeshableLog10)
}

func lemma53() {
	header("§5.3 Lemma: SplitMesher matching size vs bound; t sweep")
	res := experiments.Lemma53(400)
	fmt.Printf("%6s %6s %6s %6s %9s %9s %7s %8s %8s\n",
		"n", "b", "r", "t", "q", "bound", "found", "optimal", "probes")
	for _, r := range res.Rows {
		opt := "-"
		if r.Optimal > 0 {
			opt = fmt.Sprintf("%d", r.Optimal)
		}
		fmt.Printf("%6d %6d %6d %6d %9.4f %9.1f %7d %8s %8d\n",
			r.Spans, r.SpanSlots, r.LiveSlots, r.T, r.Q, r.Bound, r.Found, opt, r.Probes)
	}
}

func triangle() {
	header("§5.2: triangle scarcity in meshing graphs (b=32, r=10, n=1000)")
	res := experiments.Triangle()
	fmt.Printf("expected triangles, true dependent model:   %8.2f  (paper: < 2)\n", res.ExpectedDependent)
	fmt.Printf("expected triangles, independent-edge model: %8.1f  (paper: ≈ 167)\n", res.ExpectedIndependent)
	fmt.Printf("empirical triangles in one sampled graph:   %8d\n", res.EmpiricalTriangles)
	fmt.Printf("empirical edges: %d; SplitMesher(t=64) pairs found: %d\n",
		res.EmpiricalEdges, res.EmpiricalMeshedPairs)
	fmt.Printf("matching vs optimal clique cover (30 exact instances): releases %d vs %d\n",
		res.MatchingReleases, res.CoverReleases)
}

func robson() error {
	header("§1 motivation: fragmentation-induced OOM under a memory budget (Robson)")
	budgetPages := int64(32 << 20 / 4096 / *scale) // 32 MiB at scale 1
	if budgetPages < 256 {
		budgetPages = 256
	}
	res, err := experiments.Robson(budgetPages, 24, []string{"mesh", "mesh-nomesh", "jemalloc", "glibc"})
	if err != nil {
		return err
	}
	fmt.Printf("budget %.1f MiB, live-data target %.1f MiB, up to %d rounds of the size-cycling adversary\n",
		stats.MiB(res.BudgetBytes), stats.MiB(res.LiveTarget), res.Rounds)
	fmt.Printf("%-20s %10s %6s %12s %12s\n", "allocator", "rounds", "OOM", "max live MiB", "final MiB")
	for _, r := range res.Rows {
		fmt.Printf("%-20s %10d %6v %12.2f %12.2f\n",
			r.Allocator, r.RoundsCompleted, r.OOM, stats.MiB(r.MaxLive), stats.MiB(r.FinalRSS))
	}
	return nil
}

func ablation() error {
	header("§6.3 ablation: meshing × randomization on the Ruby workload")
	res, err := experiments.Ablation(*scale)
	if err != nil {
		return err
	}
	fmt.Printf("%-22s %12s %14s\n", "configuration", "mean RSS MiB", "wall time")
	for _, r := range res.Rows {
		fmt.Printf("%-22s %12.2f %14v\n", r.Allocator, r.MeanRSS/(1<<20), r.WallTime.Round(1e6))
	}
	return nil
}

func pause() error {
	header("Pause: foreground vs background meshing under concurrent traffic (§4.5)")
	res, err := experiments.Pause(*scale)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %9s %12s %12s %8s %8s %12s %8s %10s %10s\n",
		"mode", "ops", "max stall", "worst pause", "pauses", "passes", "meshed", "peak MiB", "mean MiB", "ops/sec")
	for _, r := range res.Rows {
		fmt.Printf("%-12s %9d %12v %12v %8d %8d %12d %8.2f %10.2f %10.0f\n",
			r.Config, r.Ops, r.MaxStall, r.LongestPause, r.PauseCount, r.Passes,
			r.SpansMeshed, stats.MiB(r.PeakRSS), r.MeanRSS/(1<<20), r.OpsPerSec)
	}
	if len(res.Rows) == 2 {
		fg, bg := res.Rows[0], res.Rows[1]
		if fg.MaxStall > 0 {
			fmt.Printf("background max stall vs foreground: %.2fx; worst engine pause: %.2fx\n",
				float64(bg.MaxStall)/float64(fg.MaxStall),
				float64(bg.LongestPause)/float64(fg.LongestPause))
		}
		if fg.MeanRSS > 0 {
			fmt.Printf("background mean-RSS vs foreground: %+.1f%%  (acceptance bound: within 10%%)\n",
				100*(bg.MeanRSS-fg.MeanRSS)/fg.MeanRSS)
		}
	}
	if *csvOut {
		for _, r := range res.Rows {
			if err := r.Series.WriteCSV(os.Stdout); err != nil {
				return err
			}
		}
	}
	return nil
}

func conc() error {
	header("Concurrency: shared-allocator throughput, pooled vs thread heaps, scalar vs batch")
	res, err := experiments.Concurrent(*scale)
	if err != nil {
		return err
	}
	fmt.Printf("%-18s %8s %7s %10s %12s %14s %12s\n",
		"configuration", "workers", "batch", "ops", "wall", "ops/sec", "final MiB")
	for _, r := range res.Rows {
		fmt.Printf("%-18s %8d %7d %10d %12v %14.0f %12.2f\n",
			r.Config, r.Workers, r.Batch, r.Ops, r.Wall.Round(1e6), r.OpsPerSec, stats.MiB(r.FinalRSS))
	}
	return nil
}

func scaleExp() error {
	header("Scale: free/refill throughput vs goroutine count on the sharded global heap")
	res, err := experiments.Scale(*scale)
	if err != nil {
		return err
	}
	fmt.Printf("%8s %7s %10s %12s %14s %16s %14s\n",
		"workers", "batch", "ops", "wall", "ops/sec", "shard acquires", "map lookups")
	for _, r := range res.Rows {
		fmt.Printf("%8d %7d %10d %12v %14.0f %16d %14d\n",
			r.Workers, r.Batch, r.Ops, r.Wall.Round(1e6), r.OpsPerSec, r.ShardAcquires, r.ArenaLookups)
	}
	if p := jsonPath("scale"); p != "" {
		return writeJSON(p, res)
	}
	return nil
}

func frontendExp() error {
	header("Frontend: scalar stripe+magazine path vs batch API vs pool-only hand-off")
	res, err := experiments.Frontend(*scale)
	if err != nil {
		return err
	}
	fmt.Printf("%8s %10s %10s %12s %14s %16s %14s %14s\n",
		"workers", "mode", "ops", "wall", "ops/sec", "shard acquires", "pool borrows", "frontend hits")
	for _, r := range res.Rows {
		fmt.Printf("%8d %10s %10d %12v %14.0f %16d %14d %14d\n",
			r.Workers, r.Mode, r.Ops, r.Wall.Round(1e6), r.OpsPerSec,
			r.ShardAcquires, r.PoolBorrows, r.FrontendHits)
	}
	if p := jsonPath("frontend"); p != "" {
		return writeJSON(p, res)
	}
	return nil
}

func remote() error {
	header("Remote: producer–consumer frees, message-passing queues vs shard locks")
	res, err := experiments.Remote(*scale)
	if err != nil {
		return err
	}
	fmt.Printf("%8s %6s %10s %12s %14s %16s %12s %12s\n",
		"workers", "mode", "ops", "wall", "ops/sec", "shard acquires", "queued", "drained")
	for _, r := range res.Rows {
		fmt.Printf("%8d %6s %10d %12v %14.0f %16d %12d %12d\n",
			r.Workers, r.Mode, r.Ops, r.Wall.Round(1e6), r.OpsPerSec,
			r.ShardAcquires, r.RemoteQueued, r.RemoteDrained)
	}
	if p := jsonPath("remote"); p != "" {
		return writeJSON(p, res)
	}
	return nil
}

func chaos() error {
	header("Chaos: every fault site armed, 4 seeds, exact accounting demanded")
	res, err := experiments.Chaos(*scale)
	if err != nil {
		return err
	}
	fmt.Printf("plan: %s\n", res.Plan)
	fmt.Printf("%6s %10s %9s %12s %14s %8s %9s %10s %11s\n",
		"seed", "ops", "skipped", "wall", "ops/sec", "faults", "passes", "restarts", "invariants")
	for _, r := range res.Seeds {
		inv := "ok"
		if !r.InvariantsOK {
			inv = "VIOLATED"
		}
		fmt.Printf("%6d %10d %9d %12v %14.0f %8d %9d %10d %11s\n",
			r.Seed, r.Ops, r.SkippedOps, r.Wall.Round(1e6), r.OpsPerSec,
			r.FaultsInjected, r.MeshPasses, r.MeshdRestarts, inv)
		if !r.InvariantsOK {
			return fmt.Errorf("chaos seed %d: invariant check failed", r.Seed)
		}
	}
	if p := jsonPath("chaos"); p != "" {
		return writeJSON(p, res)
	}
	return nil
}

func chaosHardened() error {
	header("Chaos (hardened): canary/poison corruption injected, containment demanded")
	res, err := experiments.ChaosHardened(*scale)
	if err != nil {
		return err
	}
	fmt.Printf("plan: %s\n", res.Plan)
	fmt.Printf("%6s %10s %12s %9s %11s %8s %8s %8s %12s %7s %11s\n",
		"seed", "ops", "checks", "injected", "violations", "retired", "lost", "audited", "quarantined", "served", "invariants")
	for _, r := range res.Seeds {
		inv := "ok"
		if !r.InvariantsOK {
			inv = "VIOLATED"
		}
		fmt.Printf("%6d %10d %12d %9d %11d %8d %8d %8d %12d %7v %11s\n",
			r.Seed, r.Ops, r.Checks, r.FaultsInjected, r.Violations,
			r.RetiredSpans, r.LostObjects, r.Audited, r.Quarantined, r.ServedAfter, inv)
		if !r.InvariantsOK {
			return fmt.Errorf("hardened chaos seed %d: invariant check failed", r.Seed)
		}
	}
	if p := jsonPath("chaos_hardened"); p != "" {
		return writeJSON(p, res)
	}
	return nil
}

func datapath() error {
	header("DataPath: object access throughput vs goroutine count (lock-free VM translation)")
	res, err := experiments.DataPath(*scale)
	if err != nil {
		return err
	}
	fmt.Printf("%8s %8s %10s %12s %14s %16s %10s\n",
		"workers", "mode", "ops", "wall", "ops/sec", "translations", "retries")
	for _, r := range res.Rows {
		fmt.Printf("%8d %8s %10d %12v %14.0f %16d %10d\n",
			r.Workers, r.Mode, r.Ops, r.Wall.Round(1e6), r.OpsPerSec, r.Translations, r.Retries)
	}
	if p := jsonPath("datapath"); p != "" {
		return writeJSON(p, res)
	}
	return nil
}
