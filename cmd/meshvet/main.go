// Command meshvet runs the allocator's custom static analysis suite over
// the module: lockorder (the documented lock hierarchy, machine-checked),
// atomicfield (no mixed atomic/plain access to a field), and nolockfast
// (//mesh:lockfree fast paths stay allocation-, lock-, and block-free).
//
// Usage:
//
//	go run ./cmd/meshvet ./...
//
// Patterns are Go-tool style directory patterns resolved against the
// enclosing module; with no arguments, ./... is assumed. Findings print
// as file:line:col: [pass] message. The exit status is 1 if there are
// findings, 2 on loader or internal errors, 0 when clean. CI runs this
// as the meshvet job; see internal/analysis for the pass documentation
// and the suppression markers (//mesh:lockorder-ok, //mesh:nonatomic,
// //mesh:slowpath).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/analysis/atomicfield"
	"repro/internal/analysis/load"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/nolockfast"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: meshvet [patterns ...]\n\nruns the lockorder, atomicfield, and nolockfast passes; default pattern ./...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	mod, pkgs, err := load.Load(dir, patterns...)
	if err != nil {
		fatal(err)
	}
	analyzers := []*analysis.Analyzer{
		lockorder.New(analysis.Default()),
		atomicfield.Analyzer,
		nolockfast.New(),
	}
	diags, err := analysis.Run(analyzers, pkgs, mod)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		posn := mod.Fset.Position(d.Pos)
		name := posn.Filename
		if rel, err := filepath.Rel(dir, name); err == nil {
			name = rel
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", name, posn.Line, posn.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "meshvet:", err)
	os.Exit(2)
}
