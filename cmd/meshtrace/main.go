// Command meshtrace generates, inspects, and replays allocation traces —
// portable records of a program's allocator-visible behaviour that can be
// re-run under any of this repository's allocators.
//
// Usage:
//
//	meshtrace gen  [-ops N] [-alloc-prob P] [-min S] [-max S] [-seed K] > trace.txt
//	meshtrace info < trace.txt
//	meshtrace replay -allocator <kind> [-scale N] < trace.txt
//	meshtrace record [-allocator <mesh kind>] [-sample N] [-events FILE] < trace.txt
//	meshtrace top  [-allocator <mesh kind>] [-sample N] [-buckets N] < trace.txt
//
// Replay prints a summary line plus the RSS series as CSV, so the same
// trace can be compared across mesh / mesh-nomesh / mesh-norand /
// jemalloc / glibc. Record and top replay the trace with the flight
// recorder enabled: record prints event-count tables (optionally dumping
// raw events), top renders per-heap event rates and a time-bucketed
// mesh-phase timeline.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "gen":
		err = gen(args)
	case "info":
		err = info()
	case "replay":
		err = replay(args)
	case "record":
		err = record(args)
	case "top":
		err = top(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "meshtrace: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  meshtrace gen  [-ops N] [-alloc-prob P] [-min S] [-max S] [-seed K] > trace.txt
  meshtrace info < trace.txt
  meshtrace replay -allocator <kind> [-scale N] < trace.txt
  meshtrace record [-allocator <mesh kind>] [-sample N] [-events FILE] < trace.txt
  meshtrace top  [-allocator <mesh kind>] [-sample N] [-buckets N] < trace.txt`)
	os.Exit(2)
}

func gen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	ops := fs.Int("ops", 100_000, "operations to generate")
	prob := fs.Float64("alloc-prob", 0.55, "probability an op is an allocation")
	minSz := fs.Int("min", 16, "minimum allocation size")
	maxSz := fs.Int("max", 2048, "maximum allocation size")
	seed := fs.Uint64("seed", 1, "generator seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr := workload.GenerateChurn(*ops, *prob, workload.Uniform{Lo: *minSz, Hi: *maxSz}, *seed)
	fmt.Printf("# meshtrace gen ops=%d alloc-prob=%.2f sizes=[%d,%d] seed=%d\n",
		*ops, *prob, *minSz, *maxSz, *seed)
	_, err := tr.WriteTo(os.Stdout)
	return err
}

func info() error {
	tr, err := workload.ParseTrace(os.Stdin)
	if err != nil {
		return err
	}
	leaked, err := tr.Validate()
	if err != nil {
		return err
	}
	allocs, frees, ticks, bytes := 0, 0, 0, int64(0)
	for _, op := range tr {
		switch op.Kind {
		case workload.OpAlloc:
			allocs++
			bytes += int64(op.Size)
		case workload.OpFree:
			frees++
		case workload.OpTick:
			ticks += op.Size
		}
	}
	fmt.Printf("ops: %d (allocs %d, frees %d), ticks %d\n", len(tr), allocs, frees, ticks)
	fmt.Printf("allocated %.2f MiB total, %d objects leaked at end\n", stats.MiB(bytes), leaked)
	return nil
}

func replay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	kind := fs.String("allocator", "mesh", "mesh | mesh-nomesh | mesh-norand | jemalloc | glibc")
	scale := fs.Int("scale", 1, "dirty-threshold scale factor")
	csvOut := fs.Bool("csv", false, "print the RSS series as CSV")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, err := workload.ParseTrace(os.Stdin)
	if err != nil {
		return err
	}
	if _, err := tr.Validate(); err != nil {
		return err
	}
	clock := core.NewLogicalClock()
	a, err := experiments.Build(*kind, *scale, clock)
	if err != nil {
		return err
	}
	h := workload.NewHarness(a, clock, 10*time.Millisecond)
	start := time.Now()
	if err := tr.Replay(h, a.NewThread()); err != nil {
		return err
	}
	wall := time.Since(start)
	series := h.Finish()
	fmt.Printf("%s: %d ops in %v; peak RSS %.2f MiB, mean RSS %.2f MiB\n",
		a.Name(), len(tr), wall.Round(time.Millisecond),
		stats.MiB(series.PeakRSS()), series.MeanRSS()/(1<<20))
	if *csvOut {
		return series.WriteCSV(os.Stdout)
	}
	return nil
}
