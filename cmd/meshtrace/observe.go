package main

// meshtrace record / meshtrace top — the flight-recorder front ends.
// Both replay a trace from stdin under a mesh-kind allocator with the
// recorder enabled, then render the captured events: record prints the
// event-count tables (and can dump raw events to a file), top renders
// per-heap event rates plus a time-bucketed mesh-phase timeline. Rates
// are per logical second — the replay clock, not wall time — so two runs
// of the same trace report identical numbers.

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/mesh"
)

// traced is the slice of the mesh API the recorder front ends need; the
// jemalloc/glibc baselines don't implement it, so -allocator rejects
// them with a type error instead of silently recording nothing. The
// scalar Malloc/Free/Flush trio is the Allocator-level surface: record
// and top replay through it (not a pinned Thread) so the trace exercises
// the front-end stripe and magazine layers the recorder instruments.
type traced interface {
	alloc.Allocator
	Malloc(size int) (uint64, error)
	Free(addr uint64) error
	Flush() error
	Control(key string, value any) error
	TraceSnapshot() mesh.TraceSnapshot
	Mesh() int
}

// observeFlags are the flags record and top share.
type observeFlags struct {
	kind      *string
	scale     *int
	sample    *int
	buffer    *int
	magazines *int
}

func addObserveFlags(fs *flag.FlagSet) observeFlags {
	return observeFlags{
		kind:      fs.String("allocator", "mesh", "mesh | mesh-nomesh | mesh-norand"),
		scale:     fs.Int("scale", 1, "dirty-threshold scale factor"),
		sample:    fs.Int("sample", 1, "record 1 in N alloc/free events (structural events always record)"),
		buffer:    fs.Int("buffer", 1<<16, "per-source ring capacity in events (rounded up to a power of two)"),
		magazines: fs.Int("magazines", 64, "front-end magazine capacity in objects (0 replays without magazines)"),
	}
}

// replayTraced replays stdin's trace with the recorder on and returns the
// snapshot plus the replayed op count. A final foreground Mesh() pass runs
// after the replay so the mesh-phase events appear even for traces whose
// churn never crosses the background trigger.
func replayTraced(o observeFlags) (mesh.TraceSnapshot, int, error) {
	tr, err := workload.ParseTrace(os.Stdin)
	if err != nil {
		return mesh.TraceSnapshot{}, 0, err
	}
	if _, err := tr.Validate(); err != nil {
		return mesh.TraceSnapshot{}, 0, err
	}
	clock := core.NewLogicalClock()
	built, err := experiments.Build(*o.kind, *o.scale, clock)
	if err != nil {
		return mesh.TraceSnapshot{}, 0, err
	}
	a, ok := built.(traced)
	if !ok {
		return mesh.TraceSnapshot{}, 0, fmt.Errorf("allocator %q has no flight recorder (use a mesh kind)", *o.kind)
	}
	for key, v := range map[string]any{
		"trace.sample_rate":         *o.sample,
		"trace.buffer_events":       *o.buffer,
		"trace.enabled":             true,
		"frontend.magazine_objects": *o.magazines,
	} {
		if err := a.Control(key, v); err != nil {
			return mesh.TraceSnapshot{}, 0, err
		}
	}
	h := workload.NewHarness(a, clock, 10*time.Millisecond)
	// Replay by hand rather than via Trace.Replay: the final foreground
	// pass must run at the trace's end-state fragmentation — after the
	// recorded ops but before leaked objects are drained — or a leaky
	// trace's meshing opportunity is freed away before we look for it.
	// Ops go through the Allocator-level scalar path (the front end), so
	// stripe and magazine events land in the recording alongside the
	// per-heap ones.
	addrs := make(map[uint64]uint64, 1024)
	for i, op := range tr {
		switch op.Kind {
		case workload.OpAlloc:
			p, err := a.Malloc(op.Size)
			if err != nil {
				return mesh.TraceSnapshot{}, 0, fmt.Errorf("replay op %d: %w", i, err)
			}
			addrs[op.ID] = p
			h.Step(1)
		case workload.OpFree:
			if err := a.Free(addrs[op.ID]); err != nil {
				return mesh.TraceSnapshot{}, 0, fmt.Errorf("replay op %d: %w", i, err)
			}
			delete(addrs, op.ID)
			h.Step(1)
		case workload.OpTick:
			h.Step(op.Size)
		}
	}
	// Relinquish the cached heaps before the final pass: spans attached
	// to a stripe-cached (or pooled) heap are pinned and cannot mesh, and
	// the flush also drains magazine-held objects back into the heap.
	if err := a.Flush(); err != nil {
		return mesh.TraceSnapshot{}, 0, err
	}
	released := a.Mesh()
	series := h.Finish()
	fmt.Printf("%s: replayed %d ops; peak RSS %.2f MiB; final mesh pass released %d spans\n",
		a.Name(), len(tr), stats.MiB(series.PeakRSS()), released)
	return a.TraceSnapshot(), len(tr), nil
}

// logicalSpan returns the trace's covered logical time, floored at one
// tick so rates divide cleanly even for single-event traces.
func logicalSpan(events []mesh.TraceEvent) time.Duration {
	if len(events) == 0 {
		return workload.DefaultTick
	}
	lo, hi := events[0].Time, events[0].Time
	for _, e := range events {
		if e.Time < lo {
			lo = e.Time
		}
		if e.Time > hi {
			hi = e.Time
		}
	}
	if hi <= lo {
		return workload.DefaultTick
	}
	return hi - lo
}

func record(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	o := addObserveFlags(fs)
	eventsOut := fs.String("events", "", "also dump every captured event to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	snap, _, err := replayTraced(o)
	if err != nil {
		return err
	}
	fmt.Printf("trace: offered %d, captured %d, dropped %d (sample rate 1/%d)\n",
		snap.Offered, len(snap.Events), snap.Dropped, *o.sample)

	span := logicalSpan(snap.Events)
	fmt.Printf("\n%-16s %10s %14s\n", "kind", "events", "events/sec")
	byKind := snap.CountByKind()
	for _, k := range trace.Kinds() {
		if n := byKind[k]; n > 0 {
			fmt.Printf("%-16s %10d %14.0f\n", k, n, float64(n)/span.Seconds())
		}
	}
	fmt.Printf("\n%-16s %10s %14s\n", "source", "events", "events/sec")
	bySrc := snap.CountBySource()
	srcs := make([]uint32, 0, len(bySrc))
	for s := range bySrc {
		srcs = append(srcs, s)
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	for _, s := range srcs {
		fmt.Printf("%-16s %10d %14.0f\n", trace.SourceName(s), bySrc[s], float64(bySrc[s])/span.Seconds())
	}
	if *eventsOut != "" {
		if err := dumpEvents(*eventsOut, snap.Events); err != nil {
			return err
		}
		fmt.Printf("\nwrote %d events to %s\n", len(snap.Events), *eventsOut)
	}
	return nil
}

// dumpEvents writes one whitespace-separated line per event:
// time_us source kind a b.
func dumpEvents(path string, events []mesh.TraceEvent) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "# time_us source kind a b")
	for _, e := range events {
		fmt.Fprintf(w, "%d %s %s %#x %d\n",
			e.Time.Microseconds(), trace.SourceName(e.Src), e.Kind, e.A, e.B)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func top(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	o := addObserveFlags(fs)
	buckets := fs.Int("buckets", 12, "timeline buckets across the trace's logical span")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *buckets < 1 {
		*buckets = 1
	}
	snap, _, err := replayTraced(o)
	if err != nil {
		return err
	}
	if len(snap.Events) == 0 {
		fmt.Println("no events captured")
		return nil
	}
	printTop(os.Stdout, snap, *buckets)
	return nil
}

// printTop renders the per-heap rate table and mesh-phase timeline.
func printTop(w io.Writer, snap mesh.TraceSnapshot, buckets int) {
	span := logicalSpan(snap.Events)
	lo := snap.Events[0].Time
	for _, e := range snap.Events {
		if e.Time < lo {
			lo = e.Time
		}
	}

	// Per-source rates, busiest first, with each source's dominant kind.
	type srcRow struct {
		src     uint32
		n       uint64
		topKind mesh.TraceEventKind
	}
	perSrc := map[uint32]map[mesh.TraceEventKind]uint64{}
	for _, e := range snap.Events {
		m := perSrc[e.Src]
		if m == nil {
			m = map[mesh.TraceEventKind]uint64{}
			perSrc[e.Src] = m
		}
		m[e.Kind]++
	}
	rows := make([]srcRow, 0, len(perSrc))
	for s, kinds := range perSrc {
		r := srcRow{src: s}
		for k, n := range kinds {
			r.n += n
			if n > kinds[r.topKind] || (n == kinds[r.topKind] && k < r.topKind) {
				r.topKind = k
			}
		}
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].src < rows[j].src
	})
	fmt.Fprintf(w, "\n%-16s %10s %14s   %s\n", "source", "events", "events/sec", "top kind")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %10d %14.0f   %s\n",
			trace.SourceName(r.src), r.n, float64(r.n)/span.Seconds(), r.topKind)
	}

	// Mesh-phase timeline: event counts per logical-time bucket for the
	// structural kinds (the sampled alloc/free noise stays out).
	phases := []mesh.TraceEventKind{
		trace.EvMeshProtect, trace.EvMeshCopy, trace.EvMeshRemap,
		trace.EvRemoteDrain, trace.EvDaemonWake, trace.EvPauseOverrun,
	}
	counts := make([]map[mesh.TraceEventKind]uint64, buckets)
	for i := range counts {
		counts[i] = map[mesh.TraceEventKind]uint64{}
	}
	width := span/time.Duration(buckets) + 1
	for _, e := range snap.Events {
		counts[int((e.Time-lo)/width)][e.Kind]++
	}
	fmt.Fprintf(w, "\nmesh-phase timeline (%v per bucket, logical time):\n", width.Round(time.Microsecond))
	fmt.Fprintf(w, "%-22s", "bucket")
	for _, p := range phases {
		fmt.Fprintf(w, " %14s", p)
	}
	fmt.Fprintln(w)
	for i, m := range counts {
		start := lo + time.Duration(i)*width
		fmt.Fprintf(w, "%-22s", fmt.Sprintf("[%v,%v)", start.Round(time.Microsecond), (start+width).Round(time.Microsecond)))
		for _, p := range phases {
			fmt.Fprintf(w, " %14d", m[p])
		}
		fmt.Fprintln(w)
	}
}
