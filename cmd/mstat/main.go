// Command mstat mirrors the paper's mstat utility (§6.1): it runs one
// workload under one allocator configuration and emits the resident-set-
// size time series as CSV on stdout, suitable for plotting the paper's
// figures.
//
// Usage:
//
//	mstat [-scale N] -workload <redis|ruby|browser> -allocator <kind> [-trace] [-stats]
//
// Allocator kinds: mesh, mesh-nomesh, mesh-norand, jemalloc, glibc.
// For the Redis workload, -defrag enables activedefrag (jemalloc only in
// the paper, but any allocator accepts it here).
//
// -stats dumps the full control surface (every readable stats.*/trace.*
// key) as Prometheus-style text on stderr after the run, keeping the CSV
// stream on stdout clean. -trace enables the flight recorder for the run
// so trace.offered/trace.dropped in the dump are live; both flags need a
// mesh-kind allocator.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/alloc"
	"repro/internal/browsersim"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/redissim"
	"repro/internal/rubysim"
	"repro/internal/stats"
)

var (
	scale     = flag.Int("scale", 1, "divide workload sizes by this factor")
	workload  = flag.String("workload", "", "redis | ruby | browser")
	allocator = flag.String("allocator", "mesh", "mesh | mesh-nomesh | mesh-norand | jemalloc | glibc")
	defrag    = flag.Bool("defrag", false, "enable activedefrag (redis workload)")
	traceOn   = flag.Bool("trace", false, "enable the flight recorder (mesh kinds only)")
	statsOut  = flag.Bool("stats", false, "dump all readable control keys as metrics on stderr (mesh kinds only)")
)

func main() {
	flag.Parse()
	if *workload == "" {
		fmt.Fprintln(os.Stderr, "usage: mstat [-scale N] -workload <redis|ruby|browser> -allocator <kind> [-defrag] [-trace] [-stats]")
		os.Exit(2)
	}
	series, a, err := run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mstat: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("series,seconds,rss_bytes,live_bytes")
	if err := series.WriteCSV(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "mstat: %v\n", err)
		os.Exit(1)
	}
	if *statsOut {
		if err := dumpStats(a); err != nil {
			fmt.Fprintf(os.Stderr, "mstat: %v\n", err)
			os.Exit(1)
		}
	}
}

// controllable is the slice of the mesh API mstat needs; the baseline
// allocators do not implement it, which is exactly the error we want.
type controllable interface {
	Control(key string, value any) error
	WriteMetrics(w io.Writer) error
}

func dumpStats(a alloc.Allocator) error {
	c, ok := a.(controllable)
	if !ok {
		return fmt.Errorf("-stats requires a mesh-kind allocator, not %q", *allocator)
	}
	return c.WriteMetrics(os.Stderr)
}

func run() (*stats.Series, alloc.Allocator, error) {
	clock := core.NewLogicalClock()
	a, err := experiments.Build(*allocator, *scale, clock)
	if err != nil {
		return nil, nil, err
	}
	if *traceOn {
		c, ok := a.(controllable)
		if !ok {
			return nil, nil, fmt.Errorf("-trace requires a mesh-kind allocator, not %q", *allocator)
		}
		if err := c.Control("trace.enabled", true); err != nil {
			return nil, nil, err
		}
	}
	switch *workload {
	case "redis":
		cfg := redissim.Default(*scale)
		cfg.ActiveDefrag = *defrag
		r, err := redissim.Run(cfg, a, clock)
		if err != nil {
			return nil, nil, err
		}
		return &r.Series, a, nil
	case "ruby":
		r, err := rubysim.Run(rubysim.Default(*scale), a, clock)
		if err != nil {
			return nil, nil, err
		}
		return &r.Series, a, nil
	case "browser":
		r, err := browsersim.Run(browsersim.Default(*scale), a, clock)
		if err != nil {
			return nil, nil, err
		}
		return &r.Series, a, nil
	default:
		return nil, nil, fmt.Errorf("unknown workload %q", *workload)
	}
}
