// Command mstat mirrors the paper's mstat utility (§6.1): it runs one
// workload under one allocator configuration and emits the resident-set-
// size time series as CSV on stdout, suitable for plotting the paper's
// figures.
//
// Usage:
//
//	mstat [-scale N] -workload <redis|ruby|browser> -allocator <kind>
//
// Allocator kinds: mesh, mesh-nomesh, mesh-norand, jemalloc, glibc.
// For the Redis workload, -defrag enables activedefrag (jemalloc only in
// the paper, but any allocator accepts it here).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/browsersim"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/redissim"
	"repro/internal/rubysim"
	"repro/internal/stats"
)

var (
	scale     = flag.Int("scale", 1, "divide workload sizes by this factor")
	workload  = flag.String("workload", "", "redis | ruby | browser")
	allocator = flag.String("allocator", "mesh", "mesh | mesh-nomesh | mesh-norand | jemalloc | glibc")
	defrag    = flag.Bool("defrag", false, "enable activedefrag (redis workload)")
)

func main() {
	flag.Parse()
	if *workload == "" {
		fmt.Fprintln(os.Stderr, "usage: mstat [-scale N] -workload <redis|ruby|browser> -allocator <kind> [-defrag]")
		os.Exit(2)
	}
	series, err := run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mstat: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("series,seconds,rss_bytes,live_bytes")
	if err := series.WriteCSV(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "mstat: %v\n", err)
		os.Exit(1)
	}
}

func run() (*stats.Series, error) {
	clock := core.NewLogicalClock()
	a, err := experiments.Build(*allocator, *scale, clock)
	if err != nil {
		return nil, err
	}
	switch *workload {
	case "redis":
		cfg := redissim.Default(*scale)
		cfg.ActiveDefrag = *defrag
		r, err := redissim.Run(cfg, a, clock)
		if err != nil {
			return nil, err
		}
		return &r.Series, nil
	case "ruby":
		r, err := rubysim.Run(rubysim.Default(*scale), a, clock)
		if err != nil {
			return nil, err
		}
		return &r.Series, nil
	case "browser":
		r, err := browsersim.Run(browsersim.Default(*scale), a, clock)
		if err != nil {
			return nil, err
		}
		return &r.Series, nil
	default:
		return nil, fmt.Errorf("unknown workload %q", *workload)
	}
}
