// Package repro is a from-scratch Go reproduction of "Mesh: Compacting
// Memory Management for C/C++ Applications" (Powers, Tench, Berger,
// McGregor; PLDI 2019).
//
// The public allocator API lives in package repro/mesh: a
// goroutine-safe Allocator backed by pooled thread heaps, explicit
// Thread handles for pinned fast-path workers, batch malloc/free for
// heavy-traffic callers, and a mallctl-style Control/ReadControl
// surface for every runtime knob (see mesh/control.go for the key
// table). The root package exists to host the repository-level
// benchmark suite (bench_test.go): one benchmark per table/figure of
// the paper's evaluation plus hot-path microbenchmarks of the public
// API. See README.md for the architecture map and how to run the
// evaluation at full scale.
package repro
