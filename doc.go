// Package repro is a from-scratch Go reproduction of "Mesh: Compacting
// Memory Management for C/C++ Applications" (Powers, Tench, Berger,
// McGregor; PLDI 2019).
//
// The public allocator API lives in package repro/mesh. The root package
// exists to host the repository-level benchmark suite (bench_test.go),
// which regenerates every table and figure of the paper's evaluation; see
// DESIGN.md for the experiment index and EXPERIMENTS.md for
// paper-vs-measured results.
package repro
