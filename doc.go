// Package repro is a from-scratch Go reproduction of "Mesh: Compacting
// Memory Management for C/C++ Applications" (Powers, Tench, Berger,
// McGregor; PLDI 2019).
//
// The public allocator API lives in package repro/mesh: a
// goroutine-safe Allocator backed by pooled thread heaps, explicit
// Thread handles for pinned fast-path workers, batch malloc/free for
// heavy-traffic callers, and a mallctl-style Control/ReadControl
// surface for every runtime knob (see mesh/control.go for the key
// table). The global heap is sharded for scalability: the paper's
// single global-heap lock is split into one lock per size class (plus
// separate locks for large objects and mesh scheduling), and the
// pointer-to-span table behind every non-local free is a lock-free
// two-level radix page map (internal/arena) — a lookup is two atomic
// loads, so frees and refills in distinct size classes never contend
// (see the lock-hierarchy comment in internal/core/global.go).
// Cross-thread frees of objects on spans attached to a live heap are
// message-passing: posted to the owning heap's lock-free MPSC queue
// (internal/core/remote.go) with a single CAS and recycled by the
// owner at its next drain point, so producer–consumer pipelines take
// no shard lock at all on the free path (toggle with the remote.queue
// control). Scalar Allocator calls skip the pool hand-off entirely via
// the per-stripe front end (internal/frontend): a Malloc descends
// stripe → magazine → pool → shard — an atomic swap on a
// stack-page-hashed stripe slot yields a cached thread heap, a per-size-
// class magazine serves the object from a local array, and only a cold
// magazine (batch refill) or a stripe collision falls through to the
// pool and the sharded heap below (frontend.enabled and
// frontend.magazine_objects controls). The
// simulated kernel's data path (internal/vm) is lock-free the same
// way: object reads, writes, and memsets translate through a radix
// page table of atomic PTEs validated by a seqlock generation, so no
// byte access ever synchronizes with the allocator (§4.5.1).
// Compaction can run inline on the free path or — with background
// meshing enabled — on a daemon goroutine (internal/meshd, the
// paper's §4.5 background thread) that meshes incrementally and
// concurrently with the application, so allocation stalls scale with
// one size class's slice (remap fix-ups bounded by the mesh.max_pause
// control) rather than pass length, and stall only that class's
// traffic; Allocator.Close stops the daemon. The root package hosts
// the repository-level
// benchmark suite (bench_test.go): one benchmark per table/figure of
// the paper's evaluation plus hot-path microbenchmarks of the public
// API. See README.md for the architecture map and how to run the
// evaluation at full scale.
//
// The concurrency invariants above are machine-checked by meshvet
// (internal/analysis, run with `go run ./cmd/meshvet ./...`): the lock
// hierarchy is verified against the spec mirrored from the global.go
// comment, no field may mix sync/atomic and plain access, and functions
// whose doc comment carries a //mesh:lockfree directive — the declared
// fast paths: shuffle-vector Malloc/Free, the remote-free push, the
// page-map Lookup, the VM data path — are proven allocation-free,
// lock-free, and non-blocking, transitively through every static
// callee. Deliberate exceptions are annotated in place
// (//mesh:slowpath, //mesh:lockorder-ok, //mesh:nonatomic); CI runs the
// suite as the meshvet job.
package repro
